package experiments

import (
	"context"
	"fmt"
	"strings"

	"intrawarp/internal/compaction"
	"intrawarp/internal/gpu"
	"intrawarp/internal/obs"
	"intrawarp/internal/par"
	"intrawarp/internal/stats"
	"intrawarp/internal/trace"
	"intrawarp/internal/workloads"
)

func init() {
	register(&Experiment{ID: "fig11", Title: "Ray tracing: total-cycle vs EU-cycle reduction under DC1/DC2 bandwidth", Run: runFig11})
	register(&Experiment{ID: "fig12", Title: "Rodinia: total-cycle vs EU-cycle reduction, 128KB L3 vs perfect L3", Run: runFig12})
	register(&Experiment{ID: "table4", Title: "Summary of BCC and SCC benefits (max/avg, EU cycles and execution time)", Run: runTable4})
}

// timedRun executes one workload under one policy/memory configuration.
// verify gates the host-side result check: sweeps verify one cell per
// workload and skip the rest (all cells compute identical architectural
// results, a tested invariant).
func timedRun(ctx context.Context, s *workloads.Spec, p compaction.Policy, dcBW int, perfectL3 bool, n int, verify bool) (*stats.Run, error) {
	cfg := gpu.DefaultConfig().WithPolicy(p)
	cfg.Mem.DCLinesPerCycle = dcBW
	cfg.Mem.PerfectL3 = perfectL3
	if factory := obs.ProbesFrom(ctx); factory != nil {
		label := fmt.Sprintf("%s/%s/dc%d", s.Name, p, dcBW)
		if perfectL3 {
			label += "/pl3"
		}
		cfg.EU.Probe = factory(label)
	}
	g := gpu.New(cfg)
	return workloads.ExecuteCtx(ctx, g, s, workloads.ExecOptions{Size: n, Timed: true, SkipVerify: !verify})
}

// TimingRow captures one workload's timed comparison against the IVB
// reference (the paper reports benefits over the existing optimization).
type TimingRow struct {
	Name string

	// Reduction in total execution cycles at DC1 and DC2, per policy.
	TotalDC1 [2]float64 // [0]=BCC, [1]=SCC
	TotalDC2 [2]float64
	// Reduction in EU busy cycles (bandwidth-independent in practice;
	// measured at DC2).
	EU [2]float64
	// DCDemand is the data-cluster lines/cycle demand at DC2 under IVB,
	// BCC, SCC (the secondary axis of Fig. 11).
	DCDemand [3]float64
	// PerfectL3 total-cycle reductions (Fig. 12 only; zero otherwise).
	TotalPL3 [2]float64
}

// timingCell identifies one (workload, policy, machine-config) point of
// the sweep.
type timingCell struct {
	wl     int // index into the workload set
	p      compaction.Policy
	dc     int
	pl3    bool
	verify bool // host-side result check; one cell per workload
}

// timingStudy runs the full policy × bandwidth sweep over a workload set.
// Every cell constructs its own GPU, so all cells are independent; they
// execute on a worker pool of the given size (below 1 selects GOMAXPROCS)
// and land in an indexed slice, keeping the assembled rows — and thus the
// rendered output — identical at any worker count. Only each workload's
// first cell verifies device results against the host reference; the
// remaining cells are policy/bandwidth re-runs of the same computation.
func timingStudy(ctx context.Context, set []*workloads.Spec, quick, withPL3 bool, workers int) ([]TimingRow, error) {
	pols := []compaction.Policy{compaction.IvyBridge, compaction.BCC, compaction.SCC}
	var cells []timingCell
	for wl := range set {
		first := true
		for _, p := range pols {
			for _, dc := range []int{1, 2} {
				cells = append(cells, timingCell{wl: wl, p: p, dc: dc, verify: first})
				first = false
			}
			if withPL3 {
				cells = append(cells, timingCell{wl: wl, p: p, dc: 1, pl3: true})
			}
		}
	}

	results := make([]*stats.Run, len(cells))
	err := par.ForErr(workers, len(cells), func(i int) error {
		c := cells[i]
		s := set[c.wl]
		n := 0
		if quick {
			n = quickScale(s)
		}
		r, err := timedRun(ctx, s, c.p, c.dc, c.pl3, n, c.verify)
		if err != nil {
			return fmt.Errorf("%s/%s/dc%d/pl3=%v: %w", s.Name, c.p, c.dc, c.pl3, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	type key struct {
		p   compaction.Policy
		dc  int
		pl3 bool
	}
	rows := make([]TimingRow, len(set))
	perWL := make([]map[key]*stats.Run, len(set))
	for i := range perWL {
		perWL[i] = map[key]*stats.Run{}
	}
	for i, c := range cells {
		perWL[c.wl][key{c.p, c.dc, c.pl3}] = results[i]
	}
	red := func(ref, with *stats.Run, eu bool) float64 {
		if eu {
			return compaction.Reduction(ref.EUBusy, with.EUBusy)
		}
		return compaction.Reduction(ref.TotalCycles, with.TotalCycles)
	}
	for wl, s := range set {
		runs := perWL[wl]
		row := TimingRow{Name: s.Name}
		for i, p := range []compaction.Policy{compaction.BCC, compaction.SCC} {
			row.TotalDC1[i] = red(runs[key{compaction.IvyBridge, 1, false}], runs[key{p, 1, false}], false)
			row.TotalDC2[i] = red(runs[key{compaction.IvyBridge, 2, false}], runs[key{p, 2, false}], false)
			row.EU[i] = red(runs[key{compaction.IvyBridge, 2, false}], runs[key{p, 2, false}], true)
			if withPL3 {
				row.TotalPL3[i] = red(runs[key{compaction.IvyBridge, 1, true}], runs[key{p, 1, true}], false)
			}
		}
		for i, p := range pols {
			row.DCDemand[i] = runs[key{p, 2, false}].DCDemand()
		}
		rows[wl] = row
	}
	return rows, nil
}

// Fig11 runs the ray-tracing timing study on a worker pool of the given
// size (below 1 selects GOMAXPROCS).
func Fig11(ctx context.Context, quick bool, workers int) ([]TimingRow, error) {
	return timingStudy(ctx, workloads.ByClass("raytrace"), quick, false, workers)
}

func runFig11(ctx *Context) error {
	rows, err := Fig11(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("workload", "bcc tot DC1", "scc tot DC1", "bcc tot DC2", "scc tot DC2",
		"bcc EU", "scc EU", "DC demand ivb/bcc/scc")
	for _, r := range rows {
		t.add(r.Name, r.TotalDC1[0], r.TotalDC1[1], r.TotalDC2[0], r.TotalDC2[1],
			r.EU[0], r.EU[1],
			fmt.Sprintf("%.2f/%.2f/%.2f", r.DCDemand[0], r.DCDemand[1], r.DCDemand[2]))
	}
	t.render(ctx.Out)
	ctx.printf("paper: DC1 captures a fraction of the EU-cycle benefit; DC2 recovers ~90%% of it\n")
	return nil
}

// Fig12 runs the Rodinia timing study including the perfect-L3 model.
func Fig12(ctx context.Context, quick bool, workers int) ([]TimingRow, error) {
	return timingStudy(ctx, workloads.ByClass("rodinia"), quick, true, workers)
}

func runFig12(ctx *Context) error {
	rows, err := Fig12(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("workload", "bcc total", "scc total", "bcc total PL3", "scc total PL3", "bcc EU", "scc EU")
	for _, r := range rows {
		t.add(r.Name, r.TotalDC1[0], r.TotalDC1[1], r.TotalPL3[0], r.TotalPL3[1], r.EU[0], r.EU[1])
	}
	t.render(ctx.Out)
	ctx.printf("paper: memory-bound kernels (BFS) see EU savings without execution-time savings\n")
	return nil
}

// Table4Summary mirrors the paper's Table 4 structure.
type Table4Summary struct {
	SimEUMax, SimEUAvg     [2]float64 // [0]=BCC [1]=SCC
	TraceEUMax, TraceEUAvg [2]float64
	DC1Max, DC1Avg         [2]float64
	DC2Max, DC2Avg         [2]float64
}

// Table4 aggregates the summary statistics over the divergent sets.
func Table4(ctx context.Context, quick bool, workers int) (*Table4Summary, error) {
	out := &Table4Summary{}

	// EU-cycle rows: execution-driven divergent set.
	sim, traces, err := workloadRuns(ctx, quick, workers)
	if err != nil {
		return nil, err
	}
	accum := func(vals [][2]float64) (max, avg [2]float64) {
		for _, v := range vals {
			for i := 0; i < 2; i++ {
				if v[i] > max[i] {
					max[i] = v[i]
				}
				avg[i] += v[i]
			}
		}
		if len(vals) > 0 {
			avg[0] /= float64(len(vals))
			avg[1] /= float64(len(vals))
		}
		return max, avg
	}
	var simVals, trVals [][2]float64
	for _, r := range sim {
		if r.Divergent() {
			simVals = append(simVals, [2]float64{
				r.EUCycleReduction(compaction.BCC), r.EUCycleReduction(compaction.SCC)})
		}
	}
	for _, r := range traces {
		trVals = append(trVals, [2]float64{
			r.EUCycleReduction(compaction.BCC), r.EUCycleReduction(compaction.SCC)})
	}
	out.SimEUMax, out.SimEUAvg = accum(simVals)
	out.TraceEUMax, out.TraceEUAvg = accum(trVals)

	// Execution-time rows: the timed divergent subset (ray tracing +
	// divergent rodinia, as in §5.4).
	var set []*workloads.Spec
	for _, s := range append(append([]*workloads.Spec{}, workloads.ByClass("raytrace")...),
		workloads.ByClass("rodinia")...) {
		if s.Divergent {
			set = append(set, s)
		}
	}
	rows, err := timingStudy(ctx, set, quick, false, workers)
	if err != nil {
		return nil, err
	}
	var dc1, dc2 [][2]float64
	for _, r := range rows {
		dc1 = append(dc1, r.TotalDC1)
		dc2 = append(dc2, r.TotalDC2)
	}
	out.DC1Max, out.DC1Avg = accum(dc1)
	out.DC2Max, out.DC2Avg = accum(dc2)
	return out, nil
}

func runTable4(ctx *Context) error {
	s, err := Table4(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("divergent workloads", "bcc max", "bcc avg", "scc max", "scc avg")
	t.add("GPGenSim-equivalent (EU cycles)", s.SimEUMax[0], s.SimEUAvg[0], s.SimEUMax[1], s.SimEUAvg[1])
	t.add("Traces (EU cycles)", s.TraceEUMax[0], s.TraceEUAvg[0], s.TraceEUMax[1], s.TraceEUAvg[1])
	t.add("Execution time (DC1)", s.DC1Max[0], s.DC1Avg[0], s.DC1Max[1], s.DC1Avg[1])
	t.add("Execution time (DC2)", s.DC2Max[0], s.DC2Avg[0], s.DC2Max[1], s.DC2Avg[1])
	t.render(ctx.Out)
	ctx.printf("paper: sim EU 36/18 38/24 | traces 31/12 42/18 | DC1 21/5 21/7 | DC2 28/12 36/18 (max/avg %%)\n")
	return nil
}

// tracesByPrefix is a small helper for filtered trace summaries, used by
// the CLI.
func tracesByPrefix(prefix string) []trace.BenefitSummary {
	var out []trace.BenefitSummary
	for _, p := range trace.SynthAll() {
		if prefix != "" && !strings.HasPrefix(p.Name, prefix) {
			continue
		}
		run := trace.Analyze(p.Name, &trace.SliceSource{Records: p.Generate()})
		out = append(out, trace.Summarize(run))
	}
	return out
}
