package experiments

import (
	"fmt"
	"strings"

	"intrawarp/internal/compaction"
	"intrawarp/internal/gpu"
	"intrawarp/internal/stats"
	"intrawarp/internal/trace"
	"intrawarp/internal/workloads"
)

func init() {
	register(&Experiment{ID: "fig11", Title: "Ray tracing: total-cycle vs EU-cycle reduction under DC1/DC2 bandwidth", Run: runFig11})
	register(&Experiment{ID: "fig12", Title: "Rodinia: total-cycle vs EU-cycle reduction, 128KB L3 vs perfect L3", Run: runFig12})
	register(&Experiment{ID: "table4", Title: "Summary of BCC and SCC benefits (max/avg, EU cycles and execution time)", Run: runTable4})
}

// timedRun executes one workload under one policy/memory configuration.
func timedRun(s *workloads.Spec, p compaction.Policy, dcBW int, perfectL3 bool, n int) (*stats.Run, error) {
	cfg := gpu.DefaultConfig().WithPolicy(p)
	cfg.Mem.DCLinesPerCycle = dcBW
	cfg.Mem.PerfectL3 = perfectL3
	g := gpu.New(cfg)
	return workloads.Execute(g, s, n, true)
}

// TimingRow captures one workload's timed comparison against the IVB
// reference (the paper reports benefits over the existing optimization).
type TimingRow struct {
	Name string

	// Reduction in total execution cycles at DC1 and DC2, per policy.
	TotalDC1 [2]float64 // [0]=BCC, [1]=SCC
	TotalDC2 [2]float64
	// Reduction in EU busy cycles (bandwidth-independent in practice;
	// measured at DC2).
	EU [2]float64
	// DCDemand is the data-cluster lines/cycle demand at DC2 under IVB,
	// BCC, SCC (the secondary axis of Fig. 11).
	DCDemand [3]float64
	// PerfectL3 total-cycle reductions (Fig. 12 only; zero otherwise).
	TotalPL3 [2]float64
}

// timingStudy runs the full policy × bandwidth sweep over a workload set.
func timingStudy(set []*workloads.Spec, quick, withPL3 bool) ([]TimingRow, error) {
	var rows []TimingRow
	for _, s := range set {
		n := 0
		if quick {
			n = quickScale(s)
		}
		row := TimingRow{Name: s.Name}
		type key struct {
			p   compaction.Policy
			dc  int
			pl3 bool
		}
		runs := map[key]*stats.Run{}
		pols := []compaction.Policy{compaction.IvyBridge, compaction.BCC, compaction.SCC}
		for _, p := range pols {
			for _, dc := range []int{1, 2} {
				r, err := timedRun(s, p, dc, false, n)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/dc%d: %w", s.Name, p, dc, err)
				}
				runs[key{p, dc, false}] = r
			}
			if withPL3 {
				r, err := timedRun(s, p, 1, true, n)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/pl3: %w", s.Name, p, err)
				}
				runs[key{p, 1, true}] = r
			}
		}
		red := func(ref, with *stats.Run, eu bool) float64 {
			if eu {
				return compaction.Reduction(ref.EUBusy, with.EUBusy)
			}
			return compaction.Reduction(ref.TotalCycles, with.TotalCycles)
		}
		for i, p := range []compaction.Policy{compaction.BCC, compaction.SCC} {
			row.TotalDC1[i] = red(runs[key{compaction.IvyBridge, 1, false}], runs[key{p, 1, false}], false)
			row.TotalDC2[i] = red(runs[key{compaction.IvyBridge, 2, false}], runs[key{p, 2, false}], false)
			row.EU[i] = red(runs[key{compaction.IvyBridge, 2, false}], runs[key{p, 2, false}], true)
			if withPL3 {
				row.TotalPL3[i] = red(runs[key{compaction.IvyBridge, 1, true}], runs[key{p, 1, true}], false)
			}
		}
		for i, p := range pols {
			row.DCDemand[i] = runs[key{p, 2, false}].DCDemand()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig11 runs the ray-tracing timing study.
func Fig11(quick bool) ([]TimingRow, error) {
	return timingStudy(workloads.ByClass("raytrace"), quick, false)
}

func runFig11(ctx *Context) error {
	rows, err := Fig11(ctx.Quick)
	if err != nil {
		return err
	}
	t := newTable("workload", "bcc tot DC1", "scc tot DC1", "bcc tot DC2", "scc tot DC2",
		"bcc EU", "scc EU", "DC demand ivb/bcc/scc")
	for _, r := range rows {
		t.add(r.Name, r.TotalDC1[0], r.TotalDC1[1], r.TotalDC2[0], r.TotalDC2[1],
			r.EU[0], r.EU[1],
			fmt.Sprintf("%.2f/%.2f/%.2f", r.DCDemand[0], r.DCDemand[1], r.DCDemand[2]))
	}
	t.render(ctx.Out)
	ctx.printf("paper: DC1 captures a fraction of the EU-cycle benefit; DC2 recovers ~90%% of it\n")
	return nil
}

// Fig12 runs the Rodinia timing study including the perfect-L3 model.
func Fig12(quick bool) ([]TimingRow, error) {
	return timingStudy(workloads.ByClass("rodinia"), quick, true)
}

func runFig12(ctx *Context) error {
	rows, err := Fig12(ctx.Quick)
	if err != nil {
		return err
	}
	t := newTable("workload", "bcc total", "scc total", "bcc total PL3", "scc total PL3", "bcc EU", "scc EU")
	for _, r := range rows {
		t.add(r.Name, r.TotalDC1[0], r.TotalDC1[1], r.TotalPL3[0], r.TotalPL3[1], r.EU[0], r.EU[1])
	}
	t.render(ctx.Out)
	ctx.printf("paper: memory-bound kernels (BFS) see EU savings without execution-time savings\n")
	return nil
}

// Table4Summary mirrors the paper's Table 4 structure.
type Table4Summary struct {
	SimEUMax, SimEUAvg     [2]float64 // [0]=BCC [1]=SCC
	TraceEUMax, TraceEUAvg [2]float64
	DC1Max, DC1Avg         [2]float64
	DC2Max, DC2Avg         [2]float64
}

// Table4 aggregates the summary statistics over the divergent sets.
func Table4(quick bool) (*Table4Summary, error) {
	out := &Table4Summary{}

	// EU-cycle rows: execution-driven divergent set.
	sim, traces, err := workloadRuns(quick)
	if err != nil {
		return nil, err
	}
	accum := func(vals [][2]float64) (max, avg [2]float64) {
		for _, v := range vals {
			for i := 0; i < 2; i++ {
				if v[i] > max[i] {
					max[i] = v[i]
				}
				avg[i] += v[i]
			}
		}
		if len(vals) > 0 {
			avg[0] /= float64(len(vals))
			avg[1] /= float64(len(vals))
		}
		return max, avg
	}
	var simVals, trVals [][2]float64
	for _, r := range sim {
		if r.Divergent() {
			simVals = append(simVals, [2]float64{
				r.EUCycleReduction(compaction.BCC), r.EUCycleReduction(compaction.SCC)})
		}
	}
	for _, r := range traces {
		trVals = append(trVals, [2]float64{
			r.EUCycleReduction(compaction.BCC), r.EUCycleReduction(compaction.SCC)})
	}
	out.SimEUMax, out.SimEUAvg = accum(simVals)
	out.TraceEUMax, out.TraceEUAvg = accum(trVals)

	// Execution-time rows: the timed divergent subset (ray tracing +
	// divergent rodinia, as in §5.4).
	var set []*workloads.Spec
	for _, s := range append(append([]*workloads.Spec{}, workloads.ByClass("raytrace")...),
		workloads.ByClass("rodinia")...) {
		if s.Divergent {
			set = append(set, s)
		}
	}
	rows, err := timingStudy(set, quick, false)
	if err != nil {
		return nil, err
	}
	var dc1, dc2 [][2]float64
	for _, r := range rows {
		dc1 = append(dc1, r.TotalDC1)
		dc2 = append(dc2, r.TotalDC2)
	}
	out.DC1Max, out.DC1Avg = accum(dc1)
	out.DC2Max, out.DC2Avg = accum(dc2)
	return out, nil
}

func runTable4(ctx *Context) error {
	s, err := Table4(ctx.Quick)
	if err != nil {
		return err
	}
	t := newTable("divergent workloads", "bcc max", "bcc avg", "scc max", "scc avg")
	t.add("GPGenSim-equivalent (EU cycles)", s.SimEUMax[0], s.SimEUAvg[0], s.SimEUMax[1], s.SimEUAvg[1])
	t.add("Traces (EU cycles)", s.TraceEUMax[0], s.TraceEUAvg[0], s.TraceEUMax[1], s.TraceEUAvg[1])
	t.add("Execution time (DC1)", s.DC1Max[0], s.DC1Avg[0], s.DC1Max[1], s.DC1Avg[1])
	t.add("Execution time (DC2)", s.DC2Max[0], s.DC2Avg[0], s.DC2Max[1], s.DC2Avg[1])
	t.render(ctx.Out)
	ctx.printf("paper: sim EU 36/18 38/24 | traces 31/12 42/18 | DC1 21/5 21/7 | DC2 28/12 36/18 (max/avg %%)\n")
	return nil
}

// tracesByPrefix is a small helper for filtered trace summaries, used by
// the CLI.
func tracesByPrefix(prefix string) []trace.BenefitSummary {
	var out []trace.BenefitSummary
	for _, p := range trace.SynthAll() {
		if prefix != "" && !strings.HasPrefix(p.Name, prefix) {
			continue
		}
		run := trace.Analyze(p.Name, &trace.SliceSource{Records: p.Generate()})
		out = append(out, trace.Summarize(run))
	}
	return out
}
