package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"intrawarp/internal/compaction"
	"intrawarp/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation-dtype", "ablation-frontend", "ablation-issue", "ablation-swizzle", "ablation-width",
		"energy", "families", "fig10", "fig11", "fig12", "fig3", "fig8", "fig9", "interwarp",
		"rfarea", "stalls", "table2", "table3", "table4"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, err := ByID("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Fig. 8 shape: under the modeled Ivy Bridge hardware, 0x00FF matches the
// coherent case, 0xF0F0 and 0xAAAA roughly double, 0xFF0F lands between;
// under SCC, 0xF0F0 and 0xAAAA drop back toward the coherent time.
func TestFig8Shape(t *testing.T) {
	res, err := Fig8(context.Background(), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel := map[uint16]Fig8Result{}
	for _, r := range res {
		rel[r.Pattern] = r
	}
	ivb := func(p uint16) float64 { return rel[p].Relative[compaction.IvyBridge] }
	if v := ivb(0x00FF); v > 1.15 {
		t.Errorf("ivb 0x00FF relative = %.2f, want ~1.0", v)
	}
	if v := ivb(0xF0F0); v < 1.6 {
		t.Errorf("ivb 0xF0F0 relative = %.2f, want ~2.0", v)
	}
	if v := ivb(0xAAAA); v < 1.6 {
		t.Errorf("ivb 0xAAAA relative = %.2f, want ~2.0", v)
	}
	if v := ivb(0xFF0F); v < 1.2 || v > 1.8 {
		t.Errorf("ivb 0xFF0F relative = %.2f, want ~1.5", v)
	}
	// BCC fixes 0xF0F0; SCC additionally fixes 0xAAAA.
	if v := rel[0xF0F0].Relative[compaction.BCC]; v > 1.3 {
		t.Errorf("bcc 0xF0F0 relative = %.2f, want ~1.0", v)
	}
	if v := rel[0xAAAA].Relative[compaction.SCC]; v > 1.3 {
		t.Errorf("scc 0xAAAA relative = %.2f, want ~1.0", v)
	}
	if v := rel[0xAAAA].Relative[compaction.BCC]; v < 1.5 {
		t.Errorf("bcc 0xAAAA relative = %.2f, want ~2.0 (BCC cannot fix scattered lanes)", v)
	}
}

// Table 2 shape: the benefit attribution moves from SCC-only (L1, L2)
// toward BCC and IVB at deeper nesting (L3, L4).
func TestTable2Shape(t *testing.T) {
	rows, err := Table2(context.Background(), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	l1, l2, l3, l4 := rows[0], rows[1], rows[2], rows[3]
	if l1.SCCAdditional < 0.30 || l1.BCCAdditional > 0.05 || l1.IVBBenefit > 0.05 {
		t.Errorf("L1 split = %+v, want SCC-dominated ~50%%", l1)
	}
	if l2.SCCAdditional < 0.50 {
		t.Errorf("L2 SCC = %.2f, want ~0.75", l2.SCCAdditional)
	}
	if l3.BCCAdditional < 0.30 || l3.SCCAdditional < 0.10 {
		t.Errorf("L3 split = %+v, want bcc ~50%% + scc ~25%%", l3)
	}
	if l4.IVBBenefit < 0.30 || l4.BCCAdditional < 0.12 {
		t.Errorf("L4 split = %+v, want ivb ~50%% + bcc ~25%%", l4)
	}
	if l4.SCCAdditional > 0.05 {
		t.Errorf("L4 SCC = %.2f, want ~0", l4.SCCAdditional)
	}
}

func TestAblationDtypeShape(t *testing.T) {
	rows, err := AblationDtype(context.Background(), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// rows are f16, f32, f64: benefit must increase with width.
	if !(rows[0].BCCReduction < rows[1].BCCReduction && rows[1].BCCReduction < rows[2].BCCReduction) {
		t.Errorf("dtype benefit not monotonic: %+v", rows)
	}
}

func TestRFAreaShape(t *testing.T) {
	rows := RFArea()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var bcc, iw float64
	for _, r := range rows {
		switch r.Org.Name {
		case "bcc":
			bcc = r.Overhead
		case "interwarp":
			iw = r.Overhead
		}
	}
	if bcc < 0.07 || bcc > 0.13 {
		t.Errorf("bcc overhead = %.3f", bcc)
	}
	if iw < 0.40 {
		t.Errorf("interwarp overhead = %.3f", iw)
	}
}

// Fig. 10 shape: divergent workloads average around the paper's ~20%,
// with a maximum in the 30–45%+ range, and SCC ≥ BCC everywhere.
func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(context.Background(), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 25 {
		t.Fatalf("only %d divergent rows", len(rows))
	}
	var maxSCC, sum float64
	for _, r := range rows {
		if r.SCC < r.BCC {
			t.Errorf("%s: scc %.3f < bcc %.3f", r.Name, r.SCC, r.BCC)
		}
		if r.SCC > maxSCC {
			maxSCC = r.SCC
		}
		sum += r.SCC
	}
	avg := sum / float64(len(rows))
	if maxSCC < 0.30 {
		t.Errorf("max SCC reduction %.3f, want ≥ 0.30 (paper: up to 42%%)", maxSCC)
	}
	if avg < 0.10 || avg > 0.40 {
		t.Errorf("avg SCC reduction %.3f, want around the paper's ~20%%", avg)
	}
}

// Inter-warp comparison shape: in this few-warps-per-block regime SCC
// beats the idealized TBC estimate (lane conflicts limit regrouping), and
// TBC inflates per-warp memory divergence while intra-warp schemes don't.
func TestInterwarpShape(t *testing.T) {
	rows, err := Interwarp(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("only %d rows", len(rows))
	}
	inflated := 0
	for _, r := range rows {
		if r.TBCReduction < 0 || r.TBCReduction > 1 || r.SCCReduction <= 0 {
			t.Errorf("%s: implausible reductions %+v", r.Name, r)
		}
		if r.PerWarpMemDiv < 0.999 {
			t.Errorf("%s: per-warp divergence %.3f below 1 (must not shrink)", r.Name, r.PerWarpMemDiv)
		}
		if r.PerWarpMemDiv > 1.01 {
			inflated++
		}
	}
	if inflated < 3 {
		t.Errorf("only %d workloads show inter-warp memory inflation", inflated)
	}
}

// Energy shape: every compaction policy must save energy vs baseline on
// divergent workloads; BCC must save operand-fetch energy that SCC does
// not; crossbar cost must stay small.
func TestEnergyShape(t *testing.T) {
	rows, err := Energy(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Relative[compaction.Baseline] < 1.0 {
			t.Errorf("%s: baseline energy %.2f below ivb", r.Name, r.Relative[compaction.Baseline])
		}
		if r.Relative[compaction.BCC] > 1.0 || r.Relative[compaction.SCC] > 1.05 {
			t.Errorf("%s: compaction increased energy: %+v", r.Name, r.Relative)
		}
		if r.SCCCrossbarShare > 0.05 {
			t.Errorf("%s: crossbar share %.3f implausibly high", r.Name, r.SCCCrossbarShare)
		}
	}
}

// Width ablation shape (§7): going from SIMD8 to SIMD32, efficiency must
// not rise and the SCC benefit must grow for every workload.
func TestAblationWidthShape(t *testing.T) {
	rows, err := AblationWidth(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[int]WidthRow{}
	for _, r := range rows {
		if byName[r.Name] == nil {
			byName[r.Name] = map[int]WidthRow{}
		}
		byName[r.Name][r.Width] = r
	}
	for name, m := range byName {
		w8, w32 := m[8], m[32]
		if w8.Efficiency < w32.Efficiency-0.01 {
			t.Errorf("%s: efficiency rose with width: %.3f@8 vs %.3f@32", name, w8.Efficiency, w32.Efficiency)
		}
		if w32.SCC <= w8.SCC {
			t.Errorf("%s: SCC benefit did not grow with width: %.3f@8 vs %.3f@32", name, w8.SCC, w32.SCC)
		}
	}
}

// Stall attribution shape: shares sum to ~1 per workload, and lavamd (the
// perfect-L3-immune kernel of Fig. 12) is memory-stall heavy.
func TestStallsShape(t *testing.T) {
	rows, err := Stalls(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StallRow{}
	for _, r := range rows {
		var sum float64
		for _, s := range r.Shares {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: shares sum to %.3f", r.Name, sum)
		}
		byName[r.Name] = r
	}
	// Distribution claims are scale-dependent (see EXPERIMENTS.md for the
	// full-size breakdown); at quick scale we assert only that work was
	// issued and lavamd sees memory stalls at all.
	if byName["lavamd"].Shares[stats.WinMemory] <= 0 {
		t.Error("lavamd shows no memory stalls")
	}
	for name, r := range byName {
		if r.Shares[stats.WinIssued] <= 0 {
			t.Errorf("%s: no issued windows", name)
		}
	}
}

func TestRunAndRenderSmoke(t *testing.T) {
	var buf bytes.Buffer
	ctx := &Context{Out: &buf, Quick: true}
	for _, id := range []string{"table3", "rfarea", "ablation-swizzle"} {
		if err := Run(id, ctx); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, frag := range []string{"parameter", "organization", "fig6"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("a", "bb")
	tb.add("x", 0.5)
	tb.addf("yy", "z")
	tb.render(&buf)
	s := buf.String()
	if !strings.Contains(s, "a   bb") && !strings.Contains(s, "a ") {
		t.Errorf("unexpected table output:\n%s", s)
	}
	if !strings.Contains(s, "50.0%") {
		t.Errorf("float cell not rendered as percent:\n%s", s)
	}
	if bar(0.5, 10) != "#####....." {
		t.Errorf("bar(0.5,10) = %q", bar(0.5, 10))
	}
	if bar(-1, 4) != "...." || bar(2, 4) != "####" {
		t.Error("bar clamping failed")
	}
}
