package experiments

import (
	"context"
	"fmt"

	"intrawarp/internal/compaction"
	"intrawarp/internal/gpu"
	"intrawarp/internal/isa"
	"intrawarp/internal/workloads"
)

func init() {
	register(&Experiment{ID: "ablation-width",
		Title: "Ablation: SIMD width vs divergence loss and compaction benefit (§5.4/§7)",
		Run:   runAblationWidth})
}

// WidthRow is the width ablation for one workload at one SIMD width.
type WidthRow struct {
	Name       string
	Width      int
	Efficiency float64
	BCC, SCC   float64 // EU-cycle reductions over the IVB baseline
}

// widthWorkloads are the width-parameterizable divergent kernels.
var widthWorkloads = []string{"bsearch", "urng", "kmeans", "particlefilter"}

// AblationWidth compiles each workload at SIMD8/16/32 and measures
// efficiency and compaction benefit, reproducing the paper's conclusion
// that wider warp widths (NVIDIA's 32, AMD's 64) lose more efficiency to
// divergence and leave more for intra-warp compaction to harvest.
func AblationWidth(ctx context.Context, quick bool) ([]WidthRow, error) {
	var rows []WidthRow
	for _, name := range widthWorkloads {
		base, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		n := 0
		if quick {
			n = quickScale(base)
		}
		for _, w := range []isa.Width{isa.SIMD8, isa.SIMD16, isa.SIMD32} {
			s, err := workloads.AtWidth(name, w)
			if err != nil {
				return nil, err
			}
			g := gpu.New(gpu.DefaultConfig())
			run, err := workloads.ExecuteCtx(ctx, g, s, workloads.ExecOptions{Size: n})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name, err)
			}
			rows = append(rows, WidthRow{
				Name: name, Width: w.Lanes(),
				Efficiency: run.SIMDEfficiency(),
				BCC:        run.EUCycleReduction(compaction.BCC),
				SCC:        run.EUCycleReduction(compaction.SCC),
			})
		}
	}
	return rows, nil
}

func runAblationWidth(ctx *Context) error {
	rows, err := AblationWidth(ctx.context(), ctx.Quick)
	if err != nil {
		return err
	}
	t := newTable("workload", "width", "efficiency", "bcc", "scc")
	for _, r := range rows {
		t.add(r.Name, fmt.Sprintf("SIMD%d", r.Width),
			fmt.Sprintf("%.3f", r.Efficiency), r.BCC, r.SCC)
	}
	t.render(ctx.Out)
	ctx.printf("§7: the gap between warp width and the 4-wide ALU grows with width, so wider\n")
	ctx.printf("machines (SIMD32 ≈ NVIDIA warps) lose more efficiency and gain more from SCC.\n")
	return nil
}
