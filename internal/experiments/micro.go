package experiments

import (
	"context"
	"fmt"

	"intrawarp/internal/compaction"
	"intrawarp/internal/gpu"
	"intrawarp/internal/isa"
	"intrawarp/internal/kbuild"
	"intrawarp/internal/par"
	"intrawarp/internal/workloads"
)

func init() {
	register(&Experiment{ID: "fig8", Title: "Ivy Bridge divergent-branch micro-benchmark (relative execution time vs enabled-lane pattern)", Run: runFig8})
	register(&Experiment{ID: "table2", Title: "Nested-branch benefit split: Ivy Bridge optimization, BCC, SCC", Run: runTable2})
	register(&Experiment{ID: "ablation-dtype", Title: "Ablation: compaction benefit vs operand datatype width (§4.1)", Run: runAblationDtype})
	register(&Experiment{ID: "ablation-issue", Title: "Ablation: front-end issue bandwidth sensitivity (§4.3)", Run: runAblationIssue})
	register(&Experiment{ID: "ablation-frontend", Title: "Ablation: instruction refetch (jump) penalty on a branchy divergent kernel", Run: runAblationFrontend})
}

// chainWork emits `chains` independent dependent-MAD chains of length
// `depth` on fresh accumulators, returning the accumulators.
func chainWork(b *kbuild.Builder, chains, depth int) []isa.Operand {
	accs := make([]isa.Operand, chains)
	for c := range accs {
		accs[c] = b.Vec()
		b.Mov(accs[c], b.F(float32(c)+1))
	}
	for d := 0; d < depth; d++ {
		for c := range accs {
			b.Mad(accs[c], accs[c], b.F(1.0001), b.F(0.5))
		}
	}
	return accs
}

// patternKernel builds the Fig. 8 micro-benchmark: an IF/ELSE whose taken
// lanes are exactly the bits of pattern, with equal work on both sides.
func patternKernel(pattern uint16, depth int) (*isa.Kernel, error) {
	b := kbuild.New(fmt.Sprintf("ubench-%04x", pattern), isa.SIMD16)
	lane := b.Vec()
	b.And(lane, b.GlobalID(), b.U(15))
	bit := b.Vec()
	b.Shr(bit, b.U(uint32(pattern)), lane)
	b.And(bit, bit, b.U(1))
	b.CmpU(isa.F0, isa.CmpEQ, bit, b.U(1))
	b.If(isa.F0)
	accA := chainWork(b, 4, depth)
	b.Else()
	accB := chainWork(b, 4, depth)
	b.EndIf()
	out := b.Vec()
	b.Add(out, accA[0], accB[0])
	oAddr := b.Addr(b.Arg(0), b.GlobalID(), 4)
	b.StoreScatter(oAddr, out)
	return b.Build()
}

// runPattern measures total cycles of the pattern kernel under a policy.
func runPattern(ctx context.Context, pattern uint16, policy compaction.Policy, n, depth int) (total, busy int64, err error) {
	k, err := patternKernel(pattern, depth)
	if err != nil {
		return 0, 0, err
	}
	g := gpu.New(gpu.DefaultConfig().WithPolicy(policy))
	out := g.AllocU32(n, make([]uint32, n))
	run, err := g.RunCtx(ctx, gpu.LaunchSpec{Kernel: k, GlobalSize: n, GroupSize: 96, Args: []uint32{out}})
	if err != nil {
		return 0, 0, err
	}
	return run.TotalCycles, run.EUBusy, nil
}

// Fig8Patterns are the enabled-lane patterns of paper Fig. 8.
var Fig8Patterns = []uint16{0xFFFF, 0xF0F0, 0x00FF, 0xFF0F, 0xAAAA}

// Fig8Result holds relative execution time per pattern and policy.
type Fig8Result struct {
	Pattern  uint16
	Relative [compaction.NumPolicies]float64 // vs the 0xFFFF case under the same policy
}

// Fig8 computes the micro-benchmark results. The pattern × policy cells
// execute on a worker pool of the given size (below 1 selects GOMAXPROCS);
// normalization against the 0xFFFF reference happens after all cells land,
// so results are identical at any worker count.
func Fig8(ctx context.Context, quick bool, workers int) ([]Fig8Result, error) {
	n, depth := 4096, 24
	if quick {
		n, depth = 1024, 16
	}
	npol := len(compaction.Policies)
	totals := make([]int64, len(Fig8Patterns)*npol)
	err := par.ForErr(workers, len(totals), func(i int) error {
		pat, p := Fig8Patterns[i/npol], compaction.Policies[i%npol]
		total, _, err := runPattern(ctx, pat, p, n, depth)
		totals[i] = total
		return err
	})
	if err != nil {
		return nil, err
	}
	var refs [compaction.NumPolicies]int64
	for pi, pat := range Fig8Patterns {
		if pat == 0xFFFF {
			for j, p := range compaction.Policies {
				refs[p] = totals[pi*npol+j]
			}
		}
	}
	out := make([]Fig8Result, 0, len(Fig8Patterns))
	for pi, pat := range Fig8Patterns {
		res := Fig8Result{Pattern: pat}
		for j, p := range compaction.Policies {
			res.Relative[p] = float64(totals[pi*npol+j]) / float64(refs[p])
		}
		out = append(out, res)
	}
	return out, nil
}

func runFig8(ctx *Context) error {
	results, err := Fig8(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("pattern", "baseline", "ivb (paper's HW)", "bcc", "scc", "meld", "resize", "its")
	for _, r := range results {
		t.add(fmt.Sprintf("0x%04X", r.Pattern),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.Baseline]),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.IvyBridge]),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.BCC]),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.SCC]),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.Melding]),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.Resize]),
			fmt.Sprintf("%.0f%%", 100*r.Relative[compaction.ITS]))
	}
	t.render(ctx.Out)
	ctx.printf("paper (ivb column): 0xFFFF=100%% 0xF0F0=200%% 0x00FF=100%% 0xFF0F~150%% 0xAAAA=200%%\n")
	return nil
}

// nestedKernel builds the Table 2 micro-benchmark: `levels` nested
// IF/ELSE splits on successive lane-index bits, with the work chain at
// every leaf.
func nestedKernel(levels, depth int) (*isa.Kernel, error) {
	b := kbuild.New(fmt.Sprintf("nested-l%d", levels), isa.SIMD16)
	lane := b.Vec()
	b.And(lane, b.GlobalID(), b.U(15))
	sink := b.Vec()
	b.Mov(sink, b.F(0))
	var nest func(level int)
	nest = func(level int) {
		if level == levels {
			mark := b.Mark()
			accs := chainWork(b, 2, depth)
			b.Add(sink, sink, accs[0])
			b.Release(mark)
			return
		}
		mark := b.Mark()
		bit := b.Vec()
		b.And(bit, lane, b.U(1<<uint(level)))
		b.CmpU(isa.F0, isa.CmpEQ, bit, b.U(0))
		b.Release(mark)
		b.If(isa.F0)
		nest(level + 1)
		b.Else()
		nest(level + 1)
		b.EndIf()
	}
	nest(0)
	oAddr := b.Addr(b.Arg(0), b.GlobalID(), 4)
	b.StoreScatter(oAddr, sink)
	return b.Build()
}

// Table2Row is the measured benefit split at one nesting level.
type Table2Row struct {
	Level         int
	IVBBenefit    float64 // cycle reduction of IVB vs baseline
	BCCAdditional float64 // additional reduction of BCC, as a fraction of baseline
	SCCAdditional float64 // additional reduction of SCC, as a fraction of baseline
}

// Table2 measures EU busy cycles of the nested micro-benchmark under all
// policies. The level × policy cells fan out over a worker pool.
func Table2(ctx context.Context, quick bool, workers int) ([]Table2Row, error) {
	n, depth := 2048, 24
	if quick {
		n, depth = 512, 16
	}
	const maxLevels = 4
	kernels := make([]*isa.Kernel, maxLevels)
	for levels := 1; levels <= maxLevels; levels++ {
		k, err := nestedKernel(levels, depth)
		if err != nil {
			return nil, err
		}
		kernels[levels-1] = k
	}
	npol := len(compaction.Policies)
	busy := make([]int64, maxLevels*npol)
	if err := par.ForErr(workers, len(busy), func(i int) error {
		k, p := kernels[i/npol], compaction.Policies[i%npol]
		g := gpu.New(gpu.DefaultConfig().WithPolicy(p))
		out := g.AllocU32(n, make([]uint32, n))
		run, err := g.RunCtx(ctx, gpu.LaunchSpec{Kernel: k, GlobalSize: n, GroupSize: 96, Args: []uint32{out}})
		if err != nil {
			return err
		}
		busy[i] = run.EUBusy
		return nil
	}); err != nil {
		return nil, err
	}
	var rows []Table2Row
	for levels := 1; levels <= maxLevels; levels++ {
		at := func(p compaction.Policy) float64 {
			for j, q := range compaction.Policies {
				if q == p {
					return float64(busy[(levels-1)*npol+j])
				}
			}
			return 0
		}
		base := at(compaction.Baseline)
		rows = append(rows, Table2Row{
			Level:         levels,
			IVBBenefit:    (base - at(compaction.IvyBridge)) / base,
			BCCAdditional: (at(compaction.IvyBridge) - at(compaction.BCC)) / base,
			SCCAdditional: (at(compaction.BCC) - at(compaction.SCC)) / base,
		})
	}
	return rows, nil
}

func runTable2(ctx *Context) error {
	rows, err := Table2(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("nesting", "ivb benefit", "bcc additional", "scc additional")
	for _, r := range rows {
		t.add(fmt.Sprintf("L%d", r.Level), r.IVBBenefit, r.BCCAdditional, r.SCCAdditional)
	}
	t.render(ctx.Out)
	ctx.printf("paper: L1 scc 50%% | L2 scc 75%% | L3 bcc 50%% + scc 25%% | L4 ivb 50%% + bcc 25%%\n")
	ctx.printf("(measured values are diluted by the control-flow instructions themselves)\n")
	return nil
}

// DtypeRow is the datatype ablation result.
type DtypeRow struct {
	DType        isa.DataType
	BCCReduction float64 // EU-busy reduction of BCC vs baseline
}

// AblationDtype measures how the BCC benefit scales with operand width on
// a one-quad-active pattern: f64 executes more group cycles per
// instruction, so compaction has more to harvest per §4.1. The per-dtype
// measurements fan out over a worker pool.
func AblationDtype(ctx context.Context, quick bool, workers int) ([]DtypeRow, error) {
	n := 2048
	depth := 24
	if quick {
		n, depth = 512, 16
	}
	dtypes := []isa.DataType{isa.F16, isa.F32, isa.F64}
	rows := make([]DtypeRow, len(dtypes))
	err := par.ForErr(workers, len(dtypes), func(di int) error {
		dt := dtypes[di]
		b := kbuild.New("dtype-"+dt.String(), isa.SIMD16)
		lane := b.Vec()
		b.And(lane, b.GlobalID(), b.U(15))
		// Only lanes 0..3 active inside the branch: one group of f32,
		// half a group of f64, a quarter group of f16.
		b.CmpU(isa.F0, isa.CmpLT, lane, b.U(4))
		b.If(isa.F0)
		acc := b.VecTyped(dt)
		b.Emit(isa.Instruction{Op: isa.OpMov, DType: dt, Dst: acc, Src0: b.U(1)})
		for d := 0; d < depth; d++ {
			b.Emit(isa.Instruction{Op: isa.OpAdd, DType: dt, Dst: acc, Src0: acc, Src1: b.U(3)})
		}
		b.EndIf()
		oAddr := b.Addr(b.Arg(0), b.GlobalID(), 4)
		zero := b.Vec()
		b.MovU(zero, b.U(0))
		b.StoreScatter(oAddr, zero)
		k, err := b.Build()
		if err != nil {
			return err
		}
		var busy [2]int64
		for i, p := range []compaction.Policy{compaction.Baseline, compaction.BCC} {
			g := gpu.New(gpu.DefaultConfig().WithPolicy(p))
			out := g.AllocU32(n, make([]uint32, n))
			run, err := g.RunCtx(ctx, gpu.LaunchSpec{Kernel: k, GlobalSize: n, GroupSize: 96, Args: []uint32{out}})
			if err != nil {
				return err
			}
			busy[i] = run.EUBusy
		}
		rows[di] = DtypeRow{DType: dt,
			BCCReduction: float64(busy[0]-busy[1]) / float64(busy[0])}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func runAblationDtype(ctx *Context) error {
	rows, err := AblationDtype(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("dtype", "group size", "bcc reduction vs baseline")
	for _, r := range rows {
		t.add(r.DType.String(), r.DType.GroupSize(), r.BCCReduction)
	}
	t.render(ctx.Out)
	ctx.printf("§4.1: wider datatypes (more execution cycles per instruction) benefit more\n")
	return nil
}

// AblationIssue compares kernel time at issue widths 1 and 2: cycle
// compression raises the demanded issue rate, so a narrower front end
// forfeits part of the benefit (§4.3's balance argument). The four
// (issue width, policy) cells fan out over a worker pool.
func AblationIssue(ctx context.Context, quick bool, workers int) (map[string]int64, error) {
	n, depth := 2048, 4
	if quick {
		n, depth = 512, 4
	}
	k, err := patternKernel(0x000F, depth)
	if err != nil {
		return nil, err
	}
	type cell struct {
		iw int
		p  compaction.Policy
	}
	var cells []cell
	for _, iw := range []int{1, 2} {
		for _, p := range []compaction.Policy{compaction.Baseline, compaction.SCC} {
			cells = append(cells, cell{iw, p})
		}
	}
	totals := make([]int64, len(cells))
	if err := par.ForErr(workers, len(cells), func(i int) error {
		cfg := gpu.DefaultConfig().WithPolicy(cells[i].p)
		cfg.EU.IssueWidth = cells[i].iw
		g := gpu.New(cfg)
		buf := g.AllocU32(n, make([]uint32, n))
		run, err := g.RunCtx(ctx, gpu.LaunchSpec{Kernel: k, GlobalSize: n, GroupSize: 96, Args: []uint32{buf}})
		if err != nil {
			return err
		}
		totals[i] = run.TotalCycles
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for i, c := range cells {
		out[fmt.Sprintf("iw%d-%s", c.iw, c.p)] = totals[i]
	}
	return out, nil
}

// FrontendRow is the jump-penalty ablation result for one penalty value.
type FrontendRow struct {
	Penalty      int
	BaseCycles   int64
	SCCCycles    int64
	SCCReduction float64
}

// AblationFrontend measures how a non-zero instruction-refetch penalty
// (paper §2.2 pipeline stage 1) erodes the total-time benefit of SCC on a
// branchy divergent workload: every loop back-edge and divergence jump
// stalls the thread's front end, and those stalls do not compress. The
// penalty × policy cells fan out over a worker pool; only the first cell
// verifies the device result (the rest are re-runs of the same compute).
func AblationFrontend(ctx context.Context, quick bool, workers int) ([]FrontendRow, error) {
	w, err := workloads.ByName("bsearch")
	if err != nil {
		return nil, err
	}
	n := 1024
	if quick {
		n = 256
	}
	pens := []int{0, 2, 4, 8}
	pols := []compaction.Policy{compaction.IvyBridge, compaction.SCC}
	totals := make([]int64, len(pens)*len(pols))
	if err := par.ForErr(workers, len(totals), func(i int) error {
		pen, p := pens[i/len(pols)], pols[i%len(pols)]
		cfg := gpu.DefaultConfig().WithPolicy(p)
		cfg.EU.JumpPenalty = pen
		g := gpu.New(cfg)
		run, err := workloads.ExecuteCtx(ctx, g, w, workloads.ExecOptions{Size: n, Timed: true, SkipVerify: i != 0})
		if err != nil {
			return err
		}
		totals[i] = run.TotalCycles
		return nil
	}); err != nil {
		return nil, err
	}
	var rows []FrontendRow
	for pi, pen := range pens {
		base, scc := totals[pi*len(pols)], totals[pi*len(pols)+1]
		rows = append(rows, FrontendRow{Penalty: pen, BaseCycles: base, SCCCycles: scc,
			SCCReduction: compaction.Reduction(base, scc)})
	}
	return rows, nil
}

func runAblationFrontend(ctx *Context) error {
	rows, err := AblationFrontend(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("jump penalty", "ivb cycles", "scc cycles", "scc reduction")
	for _, r := range rows {
		t.add(r.Penalty, r.BaseCycles, r.SCCCycles, r.SCCReduction)
	}
	t.render(ctx.Out)
	ctx.printf("§2.2/§4.3: front-end refetch stalls do not compress, so a slower instruction\n")
	ctx.printf("supply erodes the wall-clock benefit of cycle compression on branchy code.\n")
	return nil
}

func runAblationIssue(ctx *Context) error {
	res, err := AblationIssue(ctx.context(), ctx.Quick, ctx.Workers)
	if err != nil {
		return err
	}
	t := newTable("issue width", "baseline cycles", "scc cycles", "scc speedup")
	for _, iw := range []int{1, 2} {
		base := res[fmt.Sprintf("iw%d-baseline", iw)]
		scc := res[fmt.Sprintf("iw%d-scc", iw)]
		t.add(iw, base, scc, fmt.Sprintf("%.2fx", float64(base)/float64(scc)))
	}
	t.render(ctx.Out)
	ctx.printf("§4.3: compression increases front-end demand; a narrow issue stage caps the gain\n")
	return nil
}
