// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the Ivy Bridge micro-benchmark inference (Fig. 8,
// Table 2), SIMD efficiency and classification (Fig. 3), utilization
// breakdowns (Fig. 9), EU-cycle compaction benefit (Fig. 10), the ray
// tracing and Rodinia execution-time studies (Figs. 11, 12), the summary
// (Table 4), the machine configuration (Table 3), the register-file area
// comparison (§4.3), and the ablations called out in DESIGN.md.
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"intrawarp/internal/par"
)

// Context carries experiment options.
type Context struct {
	Out   io.Writer
	Quick bool // reduced problem sizes for fast runs

	// Workers bounds the worker pool used for independent experiment
	// cells (policy × workload × machine-configuration combinations) and,
	// in RunAll, for whole experiments. Values below 1 select
	// runtime.GOMAXPROCS(0); 1 forces serial execution. Cell results are
	// indexed, so output rendering is ordered and byte-identical at any
	// worker count.
	Workers int

	// Ctx optionally carries cancellation and deadlines into every
	// simulation an experiment runs; nil means context.Background(). The
	// engines check it at workgroup granularity, so cancelling stops a
	// sweep within one workgroup boundary per worker.
	Ctx context.Context
}

// context returns the effective cancellation context.
func (c *Context) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Context) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx *Context) error
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Run executes one experiment by ID.
func Run(id string, ctx *Context) error {
	e, err := ByID(id)
	if err != nil {
		return err
	}
	ctx.printf("== %s: %s ==\n", e.ID, e.Title)
	return e.Run(ctx)
}

// RunAll executes every experiment. Experiments run concurrently on the
// context's worker pool, each rendering into a private buffer; buffers
// are flushed to ctx.Out in ID order, so the combined report is
// byte-identical to a serial run. A failing experiment renders a FAILED
// line in place of the rest of its section, the remaining experiments
// still run and flush, and the joined failures (in ID order) are
// returned — so a driver that exits non-zero on error reports every
// broken experiment, including host-side verification failures, instead
// of silently truncating the report.
func RunAll(ctx *Context) error {
	all := All()
	bufs := make([]bytes.Buffer, len(all))
	errs := make([]error, len(all))
	par.For(ctx.Workers, len(all), func(i int) {
		sub := &Context{Out: &bufs[i], Quick: ctx.Quick, Workers: ctx.Workers, Ctx: ctx.Ctx}
		sub.printf("== %s: %s ==\n", all[i].ID, all[i].Title)
		errs[i] = all[i].Run(sub)
		if errs[i] != nil {
			sub.printf("FAILED: %v\n", errs[i])
		}
		sub.printf("\n")
	})
	var failed []error
	for i, e := range all {
		if _, err := ctx.Out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		if errs[i] != nil {
			failed = append(failed, fmt.Errorf("experiments: %s: %w", e.ID, errs[i]))
		}
	}
	return errors.Join(failed...)
}

// table renders rows of columns with right-padded headers.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) addf(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f%%", 100*v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// bar renders a crude text bar of fraction v in [0,1].
func bar(v float64, width int) string {
	n := int(v*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	for i := n; i < width; i++ {
		s += "."
	}
	return s
}
