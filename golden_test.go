package intrawarp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestBenchReportGolden renders the full simd-bench report at quick
// sizes and diffs it byte-for-byte against the checked-in golden file.
// The report is a pure function of the canonicalized experiment suite —
// fixed seeds, deterministic shard merging, ID-ordered rendering — so
// any byte of drift is a behavior change that must be reviewed (and,
// when intended, blessed with `go test -run Golden -update .`).
func TestBenchReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-size experiment sweep (~7s)")
	}
	var buf bytes.Buffer
	if err := RunAllExperiments(WithOutput(&buf), WithQuick()); err != nil {
		t.Fatalf("rendering the report: %v", err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "bench_quick.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (re-bless with -update): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("report drifted from %s (%d bytes now vs %d golden); first divergence:\n%s\nre-bless intended changes with -update",
		golden, len(got), len(want), firstDiff(got, want))
}

// firstDiff renders the first differing line with context, line-aligned
// so the failure message is readable without an external diff tool.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "(contents differ only in trailing bytes)"
}
