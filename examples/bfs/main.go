// BFS example: runs the paper's canonical memory-bound divergent workload
// and reproduces its headline finding (Fig. 12): breadth-first search
// shows large EU-cycle savings from intra-warp compaction, but its
// execution time barely moves because memory stalls dominate — even with
// a perfect L3.
package main

import (
	"fmt"
	"log"

	"intrawarp"
)

func main() {
	w, err := intrawarp.WorkloadByName("bfs")
	if err != nil {
		log.Fatal(err)
	}
	const n = 1024

	fmt.Println("bfs over a 1024-node random graph (frontier expansion per launch)")
	fmt.Printf("%-10s %-12s %-14s %-12s %-14s\n", "policy", "L3", "total cycles", "EU busy", "lines/send")
	type key struct {
		p   intrawarp.Policy
		pl3 bool
	}
	totals := map[key]int64{}
	busies := map[key]int64{}
	for _, pl3 := range []bool{false, true} {
		for _, p := range []intrawarp.Policy{intrawarp.IvyBridge, intrawarp.SCC} {
			opts := []intrawarp.ConfigOption{intrawarp.WithPolicy(p)}
			if pl3 {
				opts = append(opts, intrawarp.WithPerfectL3())
			}
			g, err := intrawarp.NewGPU(opts...)
			if err != nil {
				log.Fatal(err)
			}
			run, err := intrawarp.RunWorkload(g, w, intrawarp.WithSize(n), intrawarp.WithTimed())
			if err != nil {
				log.Fatal(err)
			}
			l3 := "128KB"
			if pl3 {
				l3 = "perfect"
			}
			totals[key{p, pl3}] = run.TotalCycles
			busies[key{p, pl3}] = run.EUBusy
			fmt.Printf("%-10s %-12s %-14d %-12d %-14.2f\n",
				p, l3, run.TotalCycles, run.EUBusy, run.LinesPerSend())
		}
	}
	euSave := pct(busies[key{intrawarp.IvyBridge, false}], busies[key{intrawarp.SCC, false}])
	totSave := pct(totals[key{intrawarp.IvyBridge, false}], totals[key{intrawarp.SCC, false}])
	totSavePL3 := pct(totals[key{intrawarp.IvyBridge, true}], totals[key{intrawarp.SCC, true}])
	fmt.Printf("\nSCC cuts EU cycles by %.1f%%, but total time by only %.1f%% (%.1f%% with a perfect L3):\n",
		euSave, totSave, totSavePL3)
	fmt.Println("BFS is bound by memory divergence — the gathers touch many distinct")
	fmt.Println("cache lines per instruction — so compute compression cannot help much.")
	fmt.Println("This is exactly the paper's Fig. 12 conclusion.")
}

func pct(ref, v int64) float64 { return 100 * float64(ref-v) / float64(ref) }
