// Asm-pipeline example: write a kernel in textual assembly, assemble it,
// run it, capture its execution-mask trace, and replay the trace through
// the compaction cost models — the full toolchain in one program.
package main

import (
	"fmt"
	"log"

	"intrawarp"
	"intrawarp/internal/asm"
	"intrawarp/internal/eu"
	"intrawarp/internal/gpu"
	"intrawarp/internal/isa"
	"intrawarp/internal/trace"
)

// A collatz-step counter: each work-item iterates n → n/2 or 3n+1 until
// it reaches 1 (or the iteration cap). Trip counts vary wildly per lane —
// a divergence storm.
const collatz = `
	; r20 = value (gid + 2), r22 = steps
	add(16):u32 r20, r1, #0x2
	mov(16):u32 r22, #0x0
	loop(16)
	  ; stop lanes that reached 1
	  cmp.le.f1(16):u32 r20, #0x1
	  (+f1) break(16) ->Lwhile
	  ; odd or even?
	  and(16):u32 r24, r20, #0x1
	  cmp.eq.f0(16):u32 r24, #0x1
	  (+f0) if(16) ->Lelse
	    ; odd: 3n + 1
	    mad(16):u32 r20, r20, #0x3, #0x1
Lelse:
	  else(16) ->Lend
	    ; even: n / 2
	    shr(16):u32 r20, r20, #0x1
Lend:
	  endif(16)
	  add(16):u32 r22, r22, #0x1
	  cmp.lt.f0(16):u32 r22, #0x40
Lwhile:
	(+f0) while(16) ->3
	; store the step count
	mad(16):u32 r26, r1, #0x4, r5.0<0>
	send.st.scatter(16):u32 r26, r22
	halt(16)
`

func main() {
	prog, err := asm.Assemble(collatz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled kernel:")
	fmt.Println(prog.Disassemble())

	kernel := &isa.Kernel{Name: "collatz", Program: prog, Width: intrawarp.SIMD16}
	const n = 256

	// Capture the execution-mask trace from a functional run.
	var records []intrawarp.TraceRecord
	g, err := intrawarp.NewGPU()
	if err != nil {
		log.Fatal(err)
	}
	out := g.AllocU32(n, make([]uint32, n))
	spec := intrawarp.LaunchSpec{Kernel: kernel, GlobalSize: n, GroupSize: 64, Args: []uint32{out}}
	if _, err := g.RunFunctional(spec, func(_, _ int, res eu.ExecResult) {
		records = append(records, trace.Record{
			Width: uint8(res.Width), Group: uint8(res.Group), Mask: res.Mask,
		})
	}); err != nil {
		log.Fatal(err)
	}

	// Host-check a few step counts.
	steps := g.ReadBufferU32(out, n)
	for i := 0; i < 4; i++ {
		fmt.Printf("collatz(%d) reaches 1 in %d steps\n", i+2, steps[i])
	}

	// Replay the trace through the compaction models.
	run := intrawarp.AnalyzeTrace("collatz", records)
	fmt.Printf("\ntrace: %d instructions, SIMD efficiency %.2f\n",
		run.Instructions, run.SIMDEfficiency())
	fmt.Printf("EU-cycle reduction over IvyBridge: BCC %.1f%%  SCC %.1f%%\n",
		100*run.EUCycleReduction(intrawarp.BCC), 100*run.EUCycleReduction(intrawarp.SCC))

	// And confirm with timed runs.
	fmt.Println("\ntimed execution:")
	for _, p := range []intrawarp.Policy{intrawarp.IvyBridge, intrawarp.BCC, intrawarp.SCC} {
		gt := gpu.New(gpu.DefaultConfig().WithPolicy(p))
		buf := gt.AllocU32(n, make([]uint32, n))
		r, err := gt.Run(gpu.LaunchSpec{Kernel: kernel, GlobalSize: n, GroupSize: 64,
			Args: []uint32{buf}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s total=%6d cycles  EU busy=%6d\n", p, r.TotalCycles, r.EUBusy)
	}
}
