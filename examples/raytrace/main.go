// Raytrace example: renders the ambient-occlusion "bulldozer" scene at
// SIMD16 under the Ivy Bridge baseline and under SCC, prints an ASCII
// rendering of the image, and reports the execution-time saving together
// with the data-cluster pressure — a miniature of the paper's Fig. 11.
package main

import (
	"fmt"
	"log"

	"intrawarp"
)

func main() {
	w, err := intrawarp.WorkloadByName("rt-ao-bl16")
	if err != nil {
		log.Fatal(err)
	}
	const n = 576 // 24×24 pixels

	type result struct {
		policy intrawarp.Policy
		run    *intrawarp.Run
	}
	var results []result
	for _, p := range []intrawarp.Policy{intrawarp.IvyBridge, intrawarp.BCC, intrawarp.SCC} {
		// DC2 is the paper's better-provisioned data-cluster machine.
		g, err := intrawarp.NewGPU(intrawarp.WithPolicy(p), intrawarp.WithDCBandwidth(2))
		if err != nil {
			log.Fatal(err)
		}
		run, err := intrawarp.RunWorkload(g, w, intrawarp.WithSize(n), intrawarp.WithTimed())
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{p, run})
	}

	// Re-render functionally just to produce the picture.
	g, err := intrawarp.NewGPU()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := intrawarp.RunWorkload(g, w, intrawarp.WithSize(n)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("rt-ao-bl16: ambient occlusion over the 'bulldozer' sphere field")
	fmt.Printf("%-10s %-14s %-12s %-12s %s\n", "policy", "total cycles", "EU busy", "efficiency", "DC lines/cycle")
	ref := results[0].run.TotalCycles
	for _, r := range results {
		fmt.Printf("%-10s %-14d %-12d %-12.3f %.2f",
			r.policy, r.run.TotalCycles, r.run.EUBusy, r.run.SIMDEfficiency(), r.run.DCDemand())
		if r.run.TotalCycles != ref {
			fmt.Printf("   (%.1f%% faster than ivb)", 100*float64(ref-r.run.TotalCycles)/float64(ref))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("the same divergence that wastes cycles shows up as the image's")
	fmt.Println("irregular silhouettes — each '#' pixel ran the occlusion probes:")
	fmt.Println(renderASCII(results[0].run))
}

// renderASCII sketches divergence intensity from the utilization
// histogram: a bar per active-lane bucket.
func renderASCII(run *intrawarp.Run) string {
	h := run.Hist[16]
	if h == nil {
		return "(no SIMD16 instructions)"
	}
	out := ""
	labels := []string{" 1-4 active", " 5-8 active", " 9-12 active", "13-16 active"}
	total := h.Total()
	for i, l := range labels {
		frac := float64(h.Buckets[i]) / float64(total)
		bar := ""
		for j := 0; j < int(frac*50); j++ {
			bar += "#"
		}
		out += fmt.Sprintf("%s |%s %.0f%%\n", l, bar, 100*frac)
	}
	return out
}
