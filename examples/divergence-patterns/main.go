// Divergence-patterns example: a guided tour of the cycle-compression
// mechanics on hand-picked execution masks, including the paper's Fig. 7
// worked SCC example with its full crossbar schedule.
package main

import (
	"fmt"

	"intrawarp"
)

func main() {
	fmt.Println("Execution cycles of a SIMD16 instruction (4-wide ALU, 32-bit ops)")
	fmt.Println("under each compaction policy:")
	fmt.Println()
	fmt.Printf("%-18s %-9s %-9s %-5s %-5s\n", "mask", "baseline", "ivybridge", "bcc", "scc")
	for _, m := range []intrawarp.Mask{
		0xFFFF, // coherent
		0x00FF, // lower half: the inferred Ivy Bridge optimization fires
		0xF0F0, // two dead quads: BCC territory
		0xAAAA, // alternating lanes: only SCC compresses (paper Fig. 4b/7)
		0x8001, // two scattered lanes: SCC packs them into one cycle
		0x0001, // single lane
	} {
		fmt.Printf("0x%04X %-11s %-9d %-9d %-5d %-5d\n",
			uint32(m), lanes(m),
			intrawarp.Cycles(intrawarp.Baseline, m, 16, 4),
			intrawarp.Cycles(intrawarp.IvyBridge, m, 16, 4),
			intrawarp.Cycles(intrawarp.BCC, m, 16, 4),
			intrawarp.Cycles(intrawarp.SCC, m, 16, 4))
	}

	fmt.Println()
	fmt.Println("The paper's Fig. 7 example — SCC crossbar settings for mask 0xAAAA:")
	s := intrawarp.ComputeSchedule(0xAAAA, 16, 4)
	fmt.Print(s)
	fmt.Printf("(%d of %d lane slots routed through the crossbar; '*' marks swizzles)\n",
		s.SwizzleCount(), len(s.Cycles)*4)

	fmt.Println()
	fmt.Println("Wider datatypes retire fewer lanes per cycle, so compaction has more")
	fmt.Println("to harvest (§4.1). Mask 0x000F at SIMD16:")
	fmt.Printf("%-6s %-11s %-9s %-5s\n", "dtype", "group size", "baseline", "bcc")
	for _, g := range []struct {
		name  string
		group int
	}{{"f16", 8}, {"f32", 4}, {"f64", 2}} {
		fmt.Printf("%-6s %-11d %-9d %-5d\n", g.name, g.group,
			intrawarp.Cycles(intrawarp.Baseline, 0x000F, 16, g.group),
			intrawarp.Cycles(intrawarp.BCC, 0x000F, 16, g.group))
	}
}

func lanes(m intrawarp.Mask) string {
	return fmt.Sprintf("(%d on)", m.PopCount())
}
