// Quickstart: build a small divergent kernel with the public API, run it
// under all seven divergence policies, and show how cycle compression
// changes execution time without changing results.
package main

import (
	"fmt"
	"log"

	"intrawarp"
)

func main() {
	const n = 1024

	// A kernel with a classic if/else divergence: odd work-items take the
	// expensive path (a square root), even ones the cheap path.
	b := intrawarp.NewKernel("oddeven", intrawarp.SIMD16)
	addr := b.Addr(b.Arg(0), b.GlobalID(), 4)
	v := b.Vec()
	b.LoadGather(v, addr)
	odd := b.Vec()
	b.And(odd, b.GlobalID(), b.U(1))
	b.CmpU(intrawarp.F0, intrawarp.CmpNE, odd, b.U(0))
	b.If(intrawarp.F0)
	b.Sqrt(v, v)
	b.Else()
	b.Mul(v, v, b.F(0.5))
	b.EndIf()
	b.StoreScatter(addr, v)
	kernel := b.MustBuild()

	fmt.Println("program disassembly:")
	fmt.Println(kernel.Program.Disassemble())

	var ref []float32
	for _, policy := range []intrawarp.Policy{
		intrawarp.Baseline, intrawarp.IvyBridge, intrawarp.BCC, intrawarp.SCC,
		intrawarp.Melding, intrawarp.Resize, intrawarp.ITS,
	} {
		g, err := intrawarp.NewGPU(intrawarp.WithPolicy(policy))
		if err != nil {
			log.Fatal(err)
		}
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(i) + 1
		}
		buf := g.AllocF32(n, data)
		run, err := g.Run(intrawarp.LaunchSpec{
			Kernel: kernel, GlobalSize: n, GroupSize: 64, Args: []uint32{buf},
		})
		if err != nil {
			log.Fatal(err)
		}
		out := g.ReadBufferF32(buf, n)
		if ref == nil {
			ref = out
		}
		for i := range out {
			if out[i] != ref[i] {
				log.Fatalf("policy %s changed results at %d: %v vs %v", policy, i, out[i], ref[i])
			}
		}
		fmt.Printf("%-9s total=%6d cycles  EU busy=%6d  SIMD efficiency=%.2f\n",
			policy, run.TotalCycles, run.EUBusy, run.SIMDEfficiency())
	}
	fmt.Println("\nresults are bit-identical under every policy; only time changes.")
}
